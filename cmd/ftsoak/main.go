// Command ftsoak stress-tests the fault-tolerant scheduler for a wall-clock
// budget: each iteration builds a random layered task graph, runs it
// sequentially for ground truth, then replays it under the FT scheduler with
// a random fault storm (random points, task types, repeat-failure counts,
// worker counts) and verifies every task's output. Any divergence, hang, or
// error aborts with a reproduction recipe (graph seed + fault plan JSON).
//
// The -service mode routes the same scenarios through the multi-job
// execution service instead of one-shot executors: batches of concurrent
// jobs share one long-lived pool, and every job's full output is verified,
// checking Theorem 1 end-to-end under multi-tenant load.
//
// The -crash mode soaks the durable journaled service instead: a child
// server process is repeatedly SIGKILLed at random points (-cycles kills,
// or until a run finishes early) and restarted from the same -data-dir
// (with one deliberately corrupted journal tail along the way), and every
// job is verified across restarts against its sequential reference digest.
//
// The -cluster mode soaks the shard layer: three child backends behind an
// in-process router, a standby mirroring the busiest backend's WAL over
// /journal/stream, one SIGKILL mid-storm, and every job — including the
// dead backend's re-routed shard and the promoted standby's replay — must
// still fold to its sequential reference digest.
//
//	ftsoak -duration 30s
//	ftsoak -duration 5m -maxworkers 8 -v
//	ftsoak -duration 1m -service -jobs 4
//	ftsoak -crash -cycles 8 -crashjobs 12
//	ftsoak -cluster -crashjobs 12
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
	"ftdag/internal/metrics"
	"ftdag/internal/service"
)

func main() {
	var (
		duration   = flag.Duration("duration", 30*time.Second, "how long to soak")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "master seed (printed for reproduction)")
		maxWorkers = flag.Int("maxworkers", 4, "maximum worker count per iteration")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-run hang watchdog")
		verbose    = flag.Bool("v", false, "print every iteration")
		useService = flag.Bool("service", false, "submit scenarios through the multi-job Server on one shared pool")
		jobs       = flag.Int("jobs", 4, "concurrent jobs per batch in -service mode")
		crash      = flag.Bool("crash", false, "kill-and-restart soak of the journaled service (spawns child processes)")
		cycles     = flag.Int("cycles", 8, "SIGKILL cycles in -crash mode before letting a run finish (a clean finish ends the loop early)")
		clusterM   = flag.Bool("cluster", false, "node-kill soak of the shard layer: 3 backends, router, standby failover (spawns child processes)")
		blackbox   = flag.Bool("blackbox", false, "with -cluster: assert every SIGKILLed child leaves a parseable black box and the merged cluster trace spans router + >= 2 backends")
		sdc        = flag.Bool("sdc", false, "storm selective-replication jobs with silent data corruptions and require exact detection accounting")
		sdcIters   = flag.Int("sdciters", 24, "jobs to run in -sdc mode")
		crashJobs  = flag.Int("crashjobs", 12, "total jobs the crash/cluster soak must complete")
		crashChild = flag.Bool("crashchild", false, "internal: run as a crash-soak child server")
		clustChild = flag.Bool("clusterchild", false, "internal: run as a cluster-soak backend node")
		dataDir    = flag.String("datadir", "", "internal: child journal directory")
	)
	flag.Parse()

	if *crashChild {
		if err := runCrashChild(*dataDir, *seed, *crashJobs, *maxWorkers, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "crashchild: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clustChild {
		if err := runClusterChild(*dataDir, *maxWorkers, *timeout); err != nil {
			fmt.Fprintf(os.Stderr, "clusterchild: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *crash {
		runCrashSoak(*seed, *cycles, *crashJobs, *maxWorkers, *timeout, *verbose)
		return
	}
	if *clusterM {
		runClusterSoak(*seed, *crashJobs, *maxWorkers, *timeout, *verbose, *blackbox)
		return
	}
	if *sdc {
		runSDCSoak(*seed, *sdcIters, *maxWorkers, *timeout, *verbose)
		return
	}

	fmt.Printf("ftsoak: seed=%d duration=%v\n", *seed, *duration)
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)

	if *useService {
		soakService(rng, deadline, *maxWorkers, *jobs, *timeout, *verbose)
		return
	}

	var iters, faultsInjected, recoveries int64
	for time.Now().Before(deadline) {
		iters++
		gseed := rng.Uint64() | 1
		layers := 2 + rng.Intn(6)
		width := 2 + rng.Intn(8)
		maxIn := 1 + rng.Intn(3)
		g := graph.Layered(layers, width, maxIn, gseed, nil)

		// Ground truth.
		rec0 := core.NewRecorder(g)
		if _, err := core.NewSequential(rec0, 0).Run(); err != nil {
			fail(gseed, nil, fmt.Errorf("sequential: %w", err))
		}
		want := rec0.Outputs()

		// Random storm.
		plan := fault.NewPlan()
		points := []fault.Point{fault.BeforeCompute, fault.AfterCompute, fault.AfterNotify}
		n := rng.Intn(layers * width / 2)
		for _, k := range fault.SelectTasks(g, fault.AnyTask, n, rng.Int63()) {
			plan.Add(k, points[rng.Intn(3)], 1+rng.Intn(3))
		}

		workers := 1 + rng.Intn(*maxWorkers)
		rec := core.NewRecorder(g)
		res, err := core.NewFT(rec, core.Config{
			Workers:         workers,
			Plan:            plan,
			Timeout:         *timeout,
			VerifyChecksums: true,
		}).Run()
		if err != nil {
			fail(gseed, plan, err)
		}
		if d := rec.Diff(want); d != "" {
			fail(gseed, plan, fmt.Errorf("output divergence: %s", d))
		}
		faultsInjected += res.Metrics.InjectionsFired
		recoveries += res.Metrics.Recoveries
		if *verbose {
			fmt.Printf("iter %d: graph %dx%d seed=%d workers=%d faults=%d recoveries=%d reexec=%d OK\n",
				iters, layers, width, gseed, workers,
				res.Metrics.InjectionsFired, res.Metrics.Recoveries, res.ReexecutedTasks)
		}
	}
	fmt.Printf("ftsoak: PASS — %d iterations, %d faults injected, %d recoveries, 0 divergences\n",
		iters, faultsInjected, recoveries)
}

// soakService drives random graph × fault-storm scenarios through the
// multi-job execution service in concurrent batches: every job gets its own
// Recorder spec and is verified task-by-task against a sequential ground
// truth, so any cross-job interference on the shared pool (a Theorem 1
// violation under multi-tenancy) is caught immediately.
func soakService(rng *rand.Rand, deadline time.Time, workers, batch int, timeout time.Duration, verbose bool) {
	reg := metrics.NewRegistry()
	srv := service.New(service.Config{
		Workers:           workers,
		MaxConcurrentJobs: batch,
		MaxQueuedJobs:     2 * batch,
		Registry:          reg,
	})
	pre := scrape(reg)
	var batches, jobsRun, faultsInjected, recoveries int64
	for time.Now().Before(deadline) {
		batches++
		type pending struct {
			gseed uint64
			plan  *fault.Plan
			rec   *core.Recorder
			want  map[graph.Key][]float64
			h     *service.Handle
		}
		ps := make([]*pending, 0, batch)
		for i := 0; i < batch; i++ {
			gseed := rng.Uint64() | 1
			layers := 2 + rng.Intn(6)
			width := 2 + rng.Intn(8)
			maxIn := 1 + rng.Intn(3)
			g := graph.Layered(layers, width, maxIn, gseed, nil)

			rec0 := core.NewRecorder(g)
			if _, err := core.NewSequential(rec0, 0).Run(); err != nil {
				fail(gseed, nil, fmt.Errorf("sequential: %w", err))
			}
			want := rec0.Outputs()

			// Compute-point faults only: each firing is detected at the
			// faulted task itself and costs exactly one recovery, so the
			// post-soak scrape can assert recoveries == injections. (An
			// AfterNotify fault is detected downstream and re-arms tasks via
			// resets, breaking that 1:1 accounting; the one-shot soak above
			// still covers it.)
			plan := fault.NewPlan()
			points := []fault.Point{fault.BeforeCompute, fault.AfterCompute}
			n := rng.Intn(layers * width / 2)
			for _, k := range fault.SelectTasks(g, fault.AnyTask, n, rng.Int63()) {
				plan.Add(k, points[rng.Intn(2)], 1+rng.Intn(3))
			}

			p := &pending{gseed: gseed, plan: plan, rec: core.NewRecorder(g), want: want}
			h, err := srv.Submit(service.JobSpec{
				Name:            fmt.Sprintf("soak-%d", gseed),
				Spec:            p.rec,
				Plan:            plan,
				VerifyChecksums: true,
				Deadline:        timeout,
				Verify: func(res *core.Result) error {
					if d := p.rec.Diff(p.want); d != "" {
						return fmt.Errorf("output divergence: %s", d)
					}
					return nil
				},
			})
			if err != nil {
				fail(gseed, plan, fmt.Errorf("submit: %w", err))
			}
			p.h = h
			ps = append(ps, p)
		}
		for _, p := range ps {
			res, err := p.h.Wait()
			if err != nil {
				fail(p.gseed, p.plan, err)
			}
			jobsRun++
			faultsInjected += res.Metrics.InjectionsFired
			recoveries += res.Metrics.Recoveries
			if verbose {
				fmt.Printf("batch %d job %d: seed=%d faults=%d recoveries=%d reexec=%d OK\n",
					batches, p.h.ID(), p.gseed,
					res.Metrics.InjectionsFired, res.Metrics.Recoveries, res.ReexecutedTasks)
			}
		}
	}
	stats := srv.Close()
	post := reg.Gather()
	fmt.Printf("ftsoak: PASS (service) — %d batches, %d jobs, %d faults injected, %d recoveries, 0 divergences\n",
		batches, jobsRun, faultsInjected, recoveries)
	fmt.Printf("ftsoak: shared pool: %v\n", stats)

	// Final scrape diff: the soak doubles as a metric-accounting check. The
	// registry's global counters must agree with the per-job results summed
	// above, and — with the storm restricted to compute points — every fired
	// injection must account for exactly one recovery.
	fmt.Println("ftsoak: /metrics scrape diff (post - pre):")
	for _, s := range post {
		if d := s.Value - pre[s.Name+s.Labels]; d != 0 {
			fmt.Printf("  %s%s %+g\n", s.Name, s.Labels, d)
		}
	}
	mustAccount := func(name string, want int64) {
		got, ok := reg.Value(name)
		if !ok || int64(got)-int64(pre[name]) != want {
			fail(0, nil, fmt.Errorf("metric accounting: %s moved by %v, want %d", name, got-pre[name], want))
		}
	}
	mustAccount("ftdag_injections_fired_total", faultsInjected)
	mustAccount("ftdag_recoveries_total", recoveries)
	mustAccount("ftdag_jobs_succeeded_total", jobsRun)
	if recoveries != faultsInjected {
		fail(0, nil, fmt.Errorf("metric accounting: %d recoveries for %d fired injections", recoveries, faultsInjected))
	}
	fmt.Printf("ftsoak: metric accounting OK — recoveries_total == injections fired == %d\n", faultsInjected)
}

// scrape snapshots every registry series into a name+labels → value map for
// before/after diffing.
func scrape(reg *metrics.Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range reg.Gather() {
		out[s.Name+s.Labels] = s.Value
	}
	return out
}

func fail(gseed uint64, plan *fault.Plan, err error) {
	fmt.Fprintf(os.Stderr, "ftsoak: FAILURE: %v\n", err)
	fmt.Fprintf(os.Stderr, "  graph seed: %d\n", gseed)
	if plan != nil {
		if data, jerr := json.MarshalIndent(plan, "  ", "  "); jerr == nil {
			fmt.Fprintf(os.Stderr, "  fault plan: %s\n", data)
		}
	}
	os.Exit(1)
}
