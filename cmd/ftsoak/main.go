// Command ftsoak stress-tests the fault-tolerant scheduler for a wall-clock
// budget: each iteration builds a random layered task graph, runs it
// sequentially for ground truth, then replays it under the FT scheduler with
// a random fault storm (random points, task types, repeat-failure counts,
// worker counts) and verifies every task's output. Any divergence, hang, or
// error aborts with a reproduction recipe (graph seed + fault plan JSON).
//
//	ftsoak -duration 30s
//	ftsoak -duration 5m -maxworkers 8 -v
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
)

func main() {
	var (
		duration   = flag.Duration("duration", 30*time.Second, "how long to soak")
		seed       = flag.Int64("seed", time.Now().UnixNano(), "master seed (printed for reproduction)")
		maxWorkers = flag.Int("maxworkers", 4, "maximum worker count per iteration")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-run hang watchdog")
		verbose    = flag.Bool("v", false, "print every iteration")
	)
	flag.Parse()

	fmt.Printf("ftsoak: seed=%d duration=%v\n", *seed, *duration)
	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)

	var iters, faultsInjected, recoveries int64
	for time.Now().Before(deadline) {
		iters++
		gseed := rng.Uint64() | 1
		layers := 2 + rng.Intn(6)
		width := 2 + rng.Intn(8)
		maxIn := 1 + rng.Intn(3)
		g := graph.Layered(layers, width, maxIn, gseed, nil)

		// Ground truth.
		rec0 := core.NewRecorder(g)
		if _, err := core.NewSequential(rec0, 0).Run(); err != nil {
			fail(gseed, nil, fmt.Errorf("sequential: %w", err))
		}
		want := rec0.Outputs()

		// Random storm.
		plan := fault.NewPlan()
		points := []fault.Point{fault.BeforeCompute, fault.AfterCompute, fault.AfterNotify}
		n := rng.Intn(layers * width / 2)
		for _, k := range fault.SelectTasks(g, fault.AnyTask, n, rng.Int63()) {
			plan.Add(k, points[rng.Intn(3)], 1+rng.Intn(3))
		}

		workers := 1 + rng.Intn(*maxWorkers)
		rec := core.NewRecorder(g)
		res, err := core.NewFT(rec, core.Config{
			Workers:         workers,
			Plan:            plan,
			Timeout:         *timeout,
			VerifyChecksums: true,
		}).Run()
		if err != nil {
			fail(gseed, plan, err)
		}
		if d := rec.Diff(want); d != "" {
			fail(gseed, plan, fmt.Errorf("output divergence: %s", d))
		}
		faultsInjected += res.Metrics.InjectionsFired
		recoveries += res.Metrics.Recoveries
		if *verbose {
			fmt.Printf("iter %d: graph %dx%d seed=%d workers=%d faults=%d recoveries=%d reexec=%d OK\n",
				iters, layers, width, gseed, workers,
				res.Metrics.InjectionsFired, res.Metrics.Recoveries, res.ReexecutedTasks)
		}
	}
	fmt.Printf("ftsoak: PASS — %d iterations, %d faults injected, %d recoveries, 0 divergences\n",
		iters, faultsInjected, recoveries)
}

func fail(gseed uint64, plan *fault.Plan, err error) {
	fmt.Fprintf(os.Stderr, "ftsoak: FAILURE: %v\n", err)
	fmt.Fprintf(os.Stderr, "  graph seed: %d\n", gseed)
	if plan != nil {
		if data, jerr := json.MarshalIndent(plan, "  ", "  "); jerr == nil {
			fmt.Fprintf(os.Stderr, "  fault plan: %s\n", data)
		}
	}
	os.Exit(1)
}
