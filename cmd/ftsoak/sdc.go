// SDC soak: storms selective-replication jobs with silent-data-corruption
// injections and fails unless detection is airtight. Every victim task is
// chosen from the job's replica-covered set, so a correct detector catches
// 100% of the injections: each job must report detected == injected and
// missed == 0, every sink must match the sequential reference (the detected
// corruption was re-executed away), and at the end the metrics registry's
// ftdag_sdc_*_total counters must reconcile exactly with the per-job sums.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
	"ftdag/internal/metrics"
	"ftdag/internal/replica"
	"ftdag/internal/service"
)

// sdcBudgets are the selective budgets the soak cycles through. All are high
// enough that Select covers at least a few tasks on the soak's graph sizes.
var sdcBudgets = []float64{0.25, 0.5, 0.75, 1.0}

func runSDCSoak(seed int64, iters, workers int, timeout time.Duration, verbose bool) {
	fmt.Printf("ftsoak: sdc soak seed=%d iters=%d\n", seed, iters)
	rng := rand.New(rand.NewSource(seed))
	reg := metrics.NewRegistry()
	srv := service.New(service.Config{
		Workers:           workers,
		MaxConcurrentJobs: 2,
		MaxQueuedJobs:     iters + 4,
		Registry:          reg,
	})
	pre := scrape(reg)

	var jobsRun, injected, detected, replicated int64
	for i := 0; i < iters; i++ {
		gseed := rng.Uint64() | 1
		layers := 3 + rng.Intn(4)
		width := 4 + rng.Intn(5)
		maxIn := 1 + rng.Intn(3)
		g := graph.Layered(layers, width, maxIn, gseed, nil)
		budget := sdcBudgets[i%len(sdcBudgets)]
		set := replica.Select(g, replica.Policy{Budget: budget})

		rec0 := core.NewRecorder(g)
		if _, err := core.NewSequential(rec0, 0).Run(); err != nil {
			fail(gseed, nil, fmt.Errorf("sequential: %w", err))
		}
		want := rec0.Outputs()

		// Victims come from the covered set (sink excluded, matching
		// fault.SelectTasks), so the budget always dominates the injected
		// fraction and full detection is the hard requirement, not a hope.
		var pool []graph.Key
		for _, k := range set.Keys() {
			if k != g.Sink() {
				pool = append(pool, k)
			}
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		n := 1 + rng.Intn(3)
		if n > len(pool) {
			n = len(pool)
		}
		plan := fault.NewPlan()
		for _, k := range pool[:n] {
			plan.Add(k, fault.SDC, 1)
		}

		rec := core.NewRecorder(g)
		h, err := srv.Submit(service.JobSpec{
			Name:            fmt.Sprintf("sdc-%d", gseed),
			Spec:            rec,
			Plan:            plan,
			Recovery:        service.RecoverReplicateSelective,
			ReplicaBudget:   budget,
			VerifyChecksums: true,
			Deadline:        timeout,
			Verify: func(res *core.Result) error {
				if d := rec.Diff(want); d != "" {
					return fmt.Errorf("output divergence: %s", d)
				}
				return nil
			},
		})
		if err != nil {
			fail(gseed, plan, fmt.Errorf("submit: %w", err))
		}
		res, err := h.Wait()
		if err != nil {
			fail(gseed, plan, err)
		}
		m := res.Metrics
		if m.SDCInjected != int64(n) {
			fail(gseed, plan, fmt.Errorf("sdc: %d injections fired, planned %d", m.SDCInjected, n))
		}
		if m.SDCDetected != m.SDCInjected || m.SDCMissed != 0 {
			fail(gseed, plan, fmt.Errorf(
				"sdc: budget %.2f covered every victim yet detection leaked: injected=%d detected=%d missed=%d",
				budget, m.SDCInjected, m.SDCDetected, m.SDCMissed))
		}
		jobsRun++
		injected += m.SDCInjected
		detected += m.SDCDetected
		replicated += m.ReplicatedTasks
		if verbose {
			fmt.Printf("iter %d: graph %dx%d seed=%d budget=%.2f replicated=%d sdc=%d/%d OK\n",
				i+1, layers, width, gseed, budget, m.ReplicatedTasks, m.SDCDetected, m.SDCInjected)
		}
	}
	srv.Close()

	// Registry reconciliation: the scrape-level counters must agree exactly
	// with the per-job sums — a detection that happened but was not
	// accounted (or vice versa) is a failure even if every sink verified.
	mustAccount := func(name string, want int64) {
		got, ok := reg.Value(name)
		if !ok || int64(got)-int64(pre[name]) != want {
			fail(0, nil, fmt.Errorf("metric accounting: %s moved by %v, want %d", name, got-pre[name], want))
		}
	}
	mustAccount("ftdag_sdc_injected_total", injected)
	mustAccount("ftdag_sdc_detected_total", detected)
	mustAccount("ftdag_sdc_missed_total", 0)
	mustAccount("ftdag_replicated_tasks_total", replicated)
	if detected != injected {
		fail(0, nil, fmt.Errorf("sdc: %d detections for %d injections", detected, injected))
	}
	fmt.Printf("ftsoak: PASS (sdc) — %d jobs, %d SDCs injected on covered tasks, %d detected, 0 missed, 0 divergences\n",
		jobsRun, injected, detected)
}
