// Black-box audit for the cluster soak's -blackbox mode: after the
// kill-to-reroute story has played out and every job has converged, the
// parent collects the flight-recorder boxes its children left behind and
// holds the observability layer to the same exactness standard as the
// digests — a box that cannot be parsed, a placement the victim's box
// never recorded, or a merged trace missing a process is a FAILURE, not a
// logging curiosity.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ftdag/internal/trace"
)

// boxAudit carries the -blackbox assertion inputs.
type boxAudit struct {
	nodes      []*clusterNode
	victim     *clusterNode
	victimJobs []string // job names the router placed on the victim
	routerURL  string
	client     *http.Client

	routerSpans *trace.Spans // the in-process router's span ring
	routerBox   string       // path of the router's own black box
	rerouted    int          // ftrouter_rerouted_jobs_total at audit time

	// Victim jobs the promoted standby will replay (router IDs + names);
	// the merged-trace probe is picked from the ones that were also
	// rerouted to a survivor, so the trace provably crosses processes.
	replayedIDs   []int64
	replayedNames []string

	fatalf func(string, ...any)
}

// auditBlackBoxes runs the assertions and returns (backend process count
// in the merged trace, probe job name) for the PASS line.
func auditBlackBoxes(a boxAudit) (int, string) {
	// 1. Every child — including the SIGKILLed victim, whose box is the
	// point of the exercise — left a parseable black box. The victim's
	// survives because persistence is write-behind: the ring was flushed
	// to disk while the process was still alive.
	boxes := make(map[string]*trace.BlackBox, len(a.nodes))
	for _, n := range a.nodes {
		path := trace.BoxPath(n.dir, n.name)
		box, err := trace.ReadBlackBox(path)
		if err != nil {
			a.fatalf("black box of %s: %v", n.name, err)
		}
		if len(box.Events) == 0 {
			a.fatalf("black box of %s is empty", n.name)
		}
		boxes[n.name] = box
	}

	// 2. The victim's box reconciles with the router's placements: every
	// job the router recorded as accepted by the victim must appear as a
	// job-submit event in the box the victim left behind.
	submitted := make(map[string]bool)
	for _, e := range boxes[a.victim.name].Events {
		if e.Kind == "job-submit" {
			submitted[e.Name] = true
		}
	}
	for _, name := range a.victimJobs {
		if !submitted[name] {
			a.fatalf("victim %s acknowledged %s (router placement) but its black box has no job-submit event for it", a.victim.name, name)
		}
	}

	// 3. The router's own box and span ring reconcile with its failover
	// metrics: one backend-dead event for the victim, and exactly
	// ftrouter_rerouted_jobs_total failover-resubmit records in each.
	rbox, err := trace.ReadBlackBox(a.routerBox)
	if err != nil {
		a.fatalf("router black box: %v", err)
	}
	dead, resubmits := 0, 0
	for _, e := range rbox.Events {
		switch e.Kind {
		case "backend-dead":
			if e.Name == a.victim.name {
				dead++
			}
		case "failover-resubmit":
			resubmits++
		}
	}
	if dead != 1 {
		a.fatalf("router black box has %d backend-dead events for %s, want 1", dead, a.victim.name)
	}
	if resubmits != a.rerouted {
		a.fatalf("router black box has %d failover-resubmit events, ftrouter_rerouted_jobs_total says %d", resubmits, a.rerouted)
	}
	reroutedJob := make(map[int64]bool)
	spanResubmits := 0
	for _, sp := range a.routerSpans.Snapshot() {
		if sp.Name == "failover-resubmit" {
			spanResubmits++
			reroutedJob[sp.Job] = true
		}
	}
	if spanResubmits != a.rerouted {
		a.fatalf("router span ring has %d failover-resubmit spans, ftrouter_rerouted_jobs_total says %d", spanResubmits, a.rerouted)
	}

	// 4. The merged cluster trace of one kill-to-reroute job. The probe
	// is a victim job that was both rerouted to a survivor and replayed
	// by the promoted standby, so its one trace must hold spans from the
	// router plus at least two backend processes.
	probeID, probeName := int64(0), ""
	for i, id := range a.replayedIDs {
		if reroutedJob[id] {
			probeID, probeName = id, a.replayedNames[i]
			break
		}
	}
	if probeName == "" {
		a.fatalf("no victim job was both rerouted and standby-replayed (%d replayed, %d rerouted) — the kill landed too late to probe the merged trace", len(a.replayedIDs), a.rerouted)
	}
	resp, err := a.client.Get(fmt.Sprintf("%s/debug/cluster-trace/%d", a.routerURL, probeID))
	if err != nil {
		a.fatalf("fetching merged trace of job %d: %v", probeID, err)
	}
	var m trace.MergedTrace
	err = json.NewDecoder(resp.Body).Decode(&m)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		a.fatalf("merged trace of job %d: status %d, decode err %v", probeID, resp.StatusCode, err)
	}
	if len(m.Spans) == 0 || len(m.TraceEvents) == 0 || len(m.CriticalPath) == 0 {
		a.fatalf("merged trace of job %d is empty (%d spans, %d events, %d critical-path spans)",
			probeID, len(m.Spans), len(m.TraceEvents), len(m.CriticalPath))
	}
	tid := m.Spans[0].Trace
	procs := make(map[string]bool)
	var submitSpan, resubmitSpan *trace.Span
	for i := range m.Spans {
		sp := &m.Spans[i]
		if sp.Trace != tid {
			a.fatalf("merged trace of job %d mixes trace IDs: %s and %s", probeID, tid, sp.Trace)
		}
		procs[sp.Proc] = true
		if sp.Job == probeID && sp.Name == "cluster-submit" {
			submitSpan = sp
		}
		if sp.Job == probeID && sp.Name == "failover-resubmit" && resubmitSpan == nil {
			resubmitSpan = sp
		}
	}
	if !procs["router"] {
		a.fatalf("merged trace of job %d has no router spans (procs %v)", probeID, procKeys(procs))
	}
	backends := 0
	for p := range procs {
		if p != "router" {
			backends++
		}
	}
	if backends < 2 {
		a.fatalf("merged trace of job %d spans %d backend process(es), want >= 2 (procs %v)", probeID, backends, procKeys(procs))
	}
	if submitSpan == nil || resubmitSpan == nil {
		a.fatalf("merged trace of job %d is missing the cluster-submit or failover-resubmit span", probeID)
	}
	if resubmitSpan.Parent != submitSpan.ID {
		a.fatalf("failover-resubmit span of job %d parents to %s, want the original cluster-submit span %s",
			probeID, resubmitSpan.Parent, submitSpan.ID)
	}
	return backends, probeName
}

func procKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
