// Command ftmetrics is the observability-overhead gate (make benchobs). It
// benchmarks the instrumentation hot path in both states — registry absent
// (every production default) and registry attached — and fails the build if
// the disabled path costs more than the budget, so instrumentation can never
// quietly tax runs that don't ask for it.
//
// The measured loop is the exact pattern every runtime call site uses: a
// bundle of instrument pointers that is nil when metrics are off, guarded by
// a single inline nil check (see internal/metrics bench_test.go for the
// rationale — hiding the guard behind a helper call costs ~2 ns by itself).
//
// Usage:
//
//	ftmetrics [-max-disabled-ns 2.0] [-out BENCH_metrics.json]
//
// Exit status 1 if the disabled path exceeds -max-disabled-ns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"ftdag/internal/metrics"
)

// instruments mirrors the runtime bundles (core.Instruments, the sched and
// journal observer structs): built once, nil when the registry is nil.
type instruments struct {
	computed *metrics.Counter
	lat      *metrics.Histogram
	depth    *metrics.Gauge
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		return nil
	}
	return &instruments{
		computed: r.Counter("bench_tasks_total", "x"),
		lat:      r.ValueHistogram("bench_lat", "x"),
		depth:    r.Gauge("bench_depth", "x"),
	}
}

func hotPath(b *testing.B, in *instruments) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if in != nil {
			in.computed.Inc()
			in.lat.Observe(int64(i))
			in.depth.Add(1)
		}
	}
}

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

func run(fn func(*testing.B)) result {
	// Take the best of three to shave scheduler noise off a sub-ns
	// measurement; the gate compares against a hard ceiling, so only
	// spurious slowness matters.
	best := result{NsPerOp: float64(0)}
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best.NsPerOp {
			best = result{NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	return best
}

func main() {
	maxDisabled := flag.Float64("max-disabled-ns", 2.0, "gate: max ns/op for the disabled hot path")
	out := flag.String("out", "BENCH_metrics.json", "results file (empty: stdout only)")
	flag.Parse()

	disabled := run(func(b *testing.B) { hotPath(b, newInstruments(nil)) })
	enabled := run(func(b *testing.B) { hotPath(b, newInstruments(metrics.NewRegistry())) })

	report := struct {
		Timestamp     string  `json:"timestamp"`
		Disabled      result  `json:"disabled"`
		Enabled       result  `json:"enabled"`
		MaxDisabledNs float64 `json:"max_disabled_ns"`
		Pass          bool    `json:"pass"`
	}{
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Disabled:      disabled,
		Enabled:       enabled,
		MaxDisabledNs: *maxDisabled,
		Pass:          disabled.NsPerOp <= *maxDisabled && disabled.AllocsPerOp == 0,
	}

	fmt.Printf("disabled hot path: %.3f ns/op (%d allocs/op, n=%d)\n",
		disabled.NsPerOp, disabled.AllocsPerOp, disabled.N)
	fmt.Printf("enabled hot path:  %.3f ns/op (%d allocs/op, n=%d)\n",
		enabled.NsPerOp, enabled.AllocsPerOp, enabled.N)

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftmetrics:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ftmetrics:", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *out)
	}

	if !report.Pass {
		fmt.Fprintf(os.Stderr, "FAIL: disabled instrumentation path %.3f ns/op exceeds the %.1f ns/op budget (or allocates)\n",
			disabled.NsPerOp, *maxDisabled)
		os.Exit(1)
	}
	fmt.Printf("PASS: disabled path within the %.1f ns/op budget\n", *maxDisabled)
}
