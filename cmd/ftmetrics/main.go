// Command ftmetrics is the observability-overhead gate (make benchobs). It
// benchmarks the instrumentation hot path in both states — registry absent
// (every production default) and registry attached — and fails the build if
// the disabled path costs more than the budget, so instrumentation can never
// quietly tax runs that don't ask for it. The same gate covers the tracing
// family: a disabled job-event log (trace_capacity: 0), a disabled span
// recorder, and a disabled flight recorder are all one inlined nil check,
// held to the same budget.
//
// The measured loop is the exact pattern every runtime call site uses: a
// bundle of instrument pointers that is nil when metrics are off, guarded by
// a single inline nil check (see internal/metrics bench_test.go for the
// rationale — hiding the guard behind a helper call costs ~2 ns by itself).
//
// Usage:
//
//	ftmetrics [-max-disabled-ns 2.0] [-out BENCH_metrics.json]
//
// Exit status 1 if the disabled path exceeds -max-disabled-ns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"ftdag/internal/metrics"
	"ftdag/internal/trace"
)

// instruments mirrors the runtime bundles (core.Instruments, the sched and
// journal observer structs): built once, nil when the registry is nil.
type instruments struct {
	computed *metrics.Counter
	lat      *metrics.Histogram
	depth    *metrics.Gauge
}

func newInstruments(r *metrics.Registry) *instruments {
	if r == nil {
		return nil
	}
	return &instruments{
		computed: r.Counter("bench_tasks_total", "x"),
		lat:      r.ValueHistogram("bench_lat", "x"),
		depth:    r.Gauge("bench_depth", "x"),
	}
}

func hotPath(b *testing.B, in *instruments) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if in != nil {
			in.computed.Inc()
			in.lat.Observe(int64(i))
			in.depth.Add(1)
		}
	}
}

// tracingHotPath is the disabled-tracing pattern every call site uses: a
// nil *trace.Log (the trace_capacity: 0 contract), a nil *trace.Spans
// (distributed tracing off), and a nil *trace.Flight (no black box). Each
// Emit must reduce to one inlined nil check with the argument construction
// dead-code-eliminated.
func tracingHotPath(b *testing.B, log *trace.Log, sp *trace.Spans, f *trace.Flight) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		log.Emit(trace.ComputeStart, int64(i), 0, 0)
		sp.Emit(trace.Span{Name: "compute", Job: 1, Task: int64(i)})
		f.Emit("compute", "bench", 1, int64(i), 0, trace.SpanContext{})
	}
}

type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

func run(fn func(*testing.B)) result {
	// Take the best of three to shave scheduler noise off a sub-ns
	// measurement; the gate compares against a hard ceiling, so only
	// spurious slowness matters.
	best := result{NsPerOp: float64(0)}
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best.NsPerOp {
			best = result{NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	return best
}

func main() {
	maxDisabled := flag.Float64("max-disabled-ns", 2.0, "gate: max ns/op for the disabled hot path")
	out := flag.String("out", "BENCH_metrics.json", "results file (empty: stdout only)")
	flag.Parse()

	disabled := run(func(b *testing.B) { hotPath(b, newInstruments(nil)) })
	enabled := run(func(b *testing.B) { hotPath(b, newInstruments(metrics.NewRegistry())) })
	// trace.New(0), trace.NewSpans(_, 0), trace.NewFlight(_, 0) all return
	// nil by contract — the production default when tracing is off.
	tracingOff := run(func(b *testing.B) {
		tracingHotPath(b, trace.New(0), trace.NewSpans("bench", 0), trace.NewFlight("bench", 0))
	})
	// The enabled side is informational (recorded for EXPERIMENTS.md, not
	// gated): live rings at the daemons' default capacities, no disk.
	tracingOn := run(func(b *testing.B) {
		tracingHotPath(b, trace.New(8192), trace.NewSpans("bench", 8192), trace.NewFlight("bench", 4096))
	})

	report := struct {
		Timestamp       string  `json:"timestamp"`
		Disabled        result  `json:"disabled"`
		Enabled         result  `json:"enabled"`
		TracingDisabled result  `json:"tracing_disabled"`
		TracingEnabled  result  `json:"tracing_enabled"`
		MaxDisabledNs   float64 `json:"max_disabled_ns"`
		Pass            bool    `json:"pass"`
	}{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		Disabled:        disabled,
		Enabled:         enabled,
		TracingDisabled: tracingOff,
		TracingEnabled:  tracingOn,
		MaxDisabledNs:   *maxDisabled,
		Pass: disabled.NsPerOp <= *maxDisabled && disabled.AllocsPerOp == 0 &&
			tracingOff.NsPerOp <= *maxDisabled && tracingOff.AllocsPerOp == 0,
	}

	fmt.Printf("disabled hot path: %.3f ns/op (%d allocs/op, n=%d)\n",
		disabled.NsPerOp, disabled.AllocsPerOp, disabled.N)
	fmt.Printf("enabled hot path:  %.3f ns/op (%d allocs/op, n=%d)\n",
		enabled.NsPerOp, enabled.AllocsPerOp, enabled.N)
	fmt.Printf("disabled tracing (log+spans+flight): %.3f ns/op (%d allocs/op, n=%d)\n",
		tracingOff.NsPerOp, tracingOff.AllocsPerOp, tracingOff.N)
	fmt.Printf("enabled tracing (log+spans+flight):  %.3f ns/op (%d allocs/op, n=%d)\n",
		tracingOn.NsPerOp, tracingOn.AllocsPerOp, tracingOn.N)

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftmetrics:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ftmetrics:", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *out)
	}

	if !report.Pass {
		fmt.Fprintf(os.Stderr, "FAIL: disabled instrumentation path %.3f ns/op exceeds the %.1f ns/op budget (or allocates)\n",
			disabled.NsPerOp, *maxDisabled)
		os.Exit(1)
	}
	fmt.Printf("PASS: disabled path within the %.1f ns/op budget\n", *maxDisabled)
}
