// Command ftrouter fronts a fleet of ftserve backends as one
// fault-tolerant service (internal/cluster): job keys are
// consistent-hashed across the fleet, the jobs API is proxied
// transparently, every backend's /healthz is polled, and a dead backend's
// incomplete jobs are resubmitted to survivors from their journaled
// request payloads — finished jobs keep serving their durable digests
// from the router's terminal cache.
//
//	ftrouter -addr :8090 -backends a=http://10.0.0.1:8080,b=http://10.0.0.2:8080
//
// Endpoints mirror ftserve's jobs vocabulary (POST /jobs, GET /jobs,
// GET /jobs/{id}, POST /jobs/{id}/cancel, GET /healthz, GET /metrics)
// plus POST /drain/{name} to migrate a named backend's shard away for
// maintenance, GET /debug/backends (ring + health + per-backend
// placement), and GET /debug/cluster-trace/{id} — one merged
// Perfetto-compatible trace assembled from the router's spans plus every
// backend's /debug/spans. Submissions may pin their shard with an
// X-Shard-Key header; otherwise the request body is the key, so identical
// requests route identically from any router instance.
//
// With -debug-addr a second listener serves net/http/pprof (profiles,
// goroutine dumps) without exposing them on the public address — the same
// debug parity ftserve has.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (the -debug-addr listener)
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ftdag/internal/cluster"
	"ftdag/internal/metrics"
	"ftdag/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "HTTP listen address")
		backends  = flag.String("backends", "", "comma-separated name=url backend list (e.g. a=http://h1:8080,b=http://h2:8080)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0: default)")
		interval  = flag.Duration("health-interval", time.Second, "backend health-check period")
		threshold = flag.Int("fail-threshold", 3, "consecutive health failures before failover")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request backend timeout")
		debugAddr = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty: disabled)")
		procName  = flag.String("proc-name", "", "process label for spans and the black box (empty: derived from -addr)")
		spansCap  = flag.Int("spans", 8192, "span ring capacity for cluster-wide tracing (0: tracing off)")
		flightCap = flag.Int("flight", 4096, "flight-recorder ring capacity; persisted under -data-dir/blackbox (0: off)")
		dataDir   = flag.String("data-dir", "", "directory for the router's black box (empty: recorder off)")
	)
	flag.Parse()

	proc := *procName
	if proc == "" {
		proc = "ftrouter-" + strings.Trim(strings.ReplaceAll(*addr, ":", "-"), "-")
	}
	tracer := trace.NewSpans(proc, *spansCap)
	var flight *trace.Flight
	if *dataDir != "" {
		flight = trace.NewFlight(proc, *flightCap)
		if err := flight.Persist(*dataDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "ftrouter: %v\n", err)
			os.Exit(1)
		}
		tracer.Mirror(flight)
	}

	reg := metrics.NewRegistry()
	rt := cluster.NewRouter(cluster.RouterConfig{
		Client:         &http.Client{Timeout: *timeout},
		Registry:       reg,
		Vnodes:         *vnodes,
		HealthInterval: *interval,
		FailThreshold:  *threshold,
		Tracer:         tracer,
		Flight:         flight,
	})
	started := time.Now()
	reg.GaugeFunc("ftdag_uptime_seconds", "Seconds since the router started.",
		func() float64 { return time.Since(started).Seconds() })

	n, err := addBackends(rt, *backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftrouter: %v\n", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintf(os.Stderr, "ftrouter: no backends (-backends name=url,...)\n")
		os.Exit(1)
	}
	rt.Start()
	if *debugAddr != "" {
		go func() {
			log.Printf("ftrouter: pprof debug server on %s", *debugAddr)
			// nil handler = DefaultServeMux, which net/http/pprof
			// populated at import.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("ftrouter: debug server: %v", err)
			}
		}()
	}
	log.Printf("ftrouter: routing across %d backend(s) on %s (health every %v, failover after %d misses)",
		n, *addr, *interval, *threshold)

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Mux()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("ftrouter: signal received; shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("ftrouter: http shutdown: %v", err)
	}
	cancel()
	rt.Stop()
	if err := flight.Close("sigterm"); err != nil {
		log.Printf("ftrouter: final black box: %v", err)
	}
}

// addBackends parses "name=url,name=url" and registers each entry.
func addBackends(rt *cluster.Router, list string) (int, error) {
	if strings.TrimSpace(list) == "" {
		return 0, nil
	}
	n := 0
	for _, ent := range strings.Split(list, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, url, ok := strings.Cut(ent, "=")
		if !ok || name == "" || url == "" {
			return n, fmt.Errorf("bad backend %q (want name=url)", ent)
		}
		if err := rt.AddBackend(name, url); err != nil {
			return n, fmt.Errorf("backend %s: %w", name, err)
		}
		n++
	}
	return n, nil
}
