// Command ftlint runs the repository's static-analysis suite (internal/lint)
// over the module: stdlib-only analyzers that machine-check the concurrency
// and determinism invariants the fault-tolerant scheduler depends on.
//
// Usage:
//
//	ftlint [-list] [-json] [packages]
//
// With no packages, ./... is analyzed. Findings print as
// "file:line:col: [analyzer] message"; the exit status is 1 when there are
// findings (including load failures of any package) and 0 on a clean tree.
// With -json a structured report goes to stdout instead — every finding with
// its witness chain, suppressed findings included and marked — and the exit
// status considers only active (unsuppressed) findings. -validate reads a
// report back from stdin and schema-validates it (the `make lint-json`
// round-trip smoke).
// Per-line suppressions: //lint:ignore <analyzer> <reason> — see the
// README's "Static analysis" section.
package main

import (
	"flag"
	"fmt"
	"os"

	"ftdag/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit a structured JSON report (suppressed findings included)")
	validate := flag.Bool("validate", false, "schema-validate a JSON report from stdin and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *validate {
		r, err := lint.ReadJSON(os.Stdin)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ftlint: report valid: %d analyzer(s), %d finding(s), %d active\n",
			len(r.Analyzers), len(r.Findings), r.Active)
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	ld := lint.NewLoader(root)
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		report := lint.NewReport(lint.All, lint.CheckVerbose(ld.Fset, pkgs, lint.All))
		if err := report.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		if report.Active > 0 {
			fmt.Fprintf(os.Stderr, "ftlint: %d active finding(s)\n", report.Active)
			os.Exit(1)
		}
		return
	}

	diags := lint.Check(ld.Fset, pkgs, lint.All)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ftlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftlint:", err)
	os.Exit(2)
}
