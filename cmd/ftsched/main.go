// Command ftsched is the scheduler fast-path gate (make benchsched). It
// measures the two numbers the hot-path overhaul is accountable for and
// fails the build if either regresses:
//
//   - The steady-state spawn→execute cycle must be allocation-free: each
//     spawned job takes its slot from the worker's free-list and the
//     executing worker recycles it, so the cycle touches no allocator. The
//     gate is exact (-max-spawn-allocs, default 0) — a single alloc/op here
//     multiplies across every task-graph edge.
//
//   - End-to-end service throughput (the BENCH_service.json workload: the
//     five app kernels through one in-process Server, half the jobs under a
//     fault plan, results verified) must stay above -min-jobs-per-sec. The
//     floor is a regression tripwire below the measured steady state, not an
//     aspiration — on a single-core box the ceiling is the sequential
//     compute floor, which no scheduler can beat (see EXPERIMENTS.md).
//
// The spawn benchmark chains each job to spawn its successor (spawn→execute
// →recycle→spawn) rather than bursting, because a burst never recycles —
// steady state is where the free-list pays.
//
// Usage:
//
//	ftsched [-jobs 40] [-workers 4] [-min-jobs-per-sec N]
//	        [-max-spawn-allocs 0] [-out BENCH_sched.json]
//
// Exit status 1 if a gate fails.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"testing"
	"time"

	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/harness"
	"ftdag/internal/sched"
	"ftdag/internal/service"
	"ftdag/internal/stats"
)

type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"n"`
}

// bestOf3 runs the benchmark three times and keeps the fastest — the gates
// compare against hard ceilings, so only spurious slowness matters.
func bestOf3(fn func(*testing.B)) benchResult {
	var best benchResult
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best.NsPerOp {
			best = benchResult{NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), N: r.N}
		}
	}
	return best
}

// benchSpawnExecute is the allocation gate: a self-chaining spawn→execute
// ping on a single-worker pool, the same cycle every task-graph edge takes.
func benchSpawnExecute(b *testing.B) {
	p := sched.NewPool(1)
	defer p.Close()
	done := make(chan struct{})
	n := 0
	var f sched.Func
	f = func(w *sched.Worker) {
		if n < b.N {
			n++
			w.Spawn(f)
			return
		}
		close(done)
	}
	b.ReportAllocs()
	b.ResetTimer()
	p.Submit(f)
	<-done
	p.Wait()
}

type summaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func toSummaryJSON(s stats.Summary) summaryJSON {
	return summaryJSON{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min,
		P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
}

type loadResult struct {
	Jobs        int         `json:"jobs"`
	FaultedJobs int         `json:"faulted_jobs"`
	ElapsedSec  float64     `json:"elapsed_sec"`
	JobsPerSec  float64     `json:"jobs_per_sec"`
	ExecMS      summaryJSON `json:"exec_ms"`
	SojournMS   summaryJSON `json:"sojourn_ms"`
	Sched       sched.Stats `json:"sched"`
}

// runServiceLoad is the BENCH_service workload in-process: n jobs over the
// five app kernels (quick sizes), every second job under an after-compute
// fault plan, all results verified against the sequential reference.
func runServiceLoad(n, workers int) (loadResult, error) {
	sizes := harness.QuickSizes()
	srv := service.New(service.Config{Workers: workers, MaxConcurrentJobs: workers})

	specs := make([]service.JobSpec, n)
	faulted := 0
	for i := 0; i < n; i++ {
		name := harness.AppNames[i%len(harness.AppNames)]
		a, err := harness.MakeApp(name, sizes[name])
		if err != nil {
			return loadResult{}, err
		}
		spec := service.JobSpec{
			Name:      fmt.Sprintf("%s#%d", name, i),
			Spec:      a.Spec(),
			Retention: a.Retention(),
			Verify:    func(res *core.Result) error { return a.VerifySink(res.Sink) },
		}
		if i%2 == 1 {
			spec.Plan = fault.PlanCount(a.Spec(), fault.AnyTask, fault.AfterCompute, 3, int64(1000+i))
			faulted++
		}
		specs[i] = spec
	}

	start := time.Now()
	handles := make([]*service.Handle, 0, n)
	for _, spec := range specs {
		for {
			h, err := srv.Submit(spec)
			if err == nil {
				handles = append(handles, h)
				break
			}
			if !errors.Is(err, service.ErrQueueFull) {
				return loadResult{}, err
			}
			time.Sleep(time.Millisecond)
		}
	}
	var execMS, sojournMS []float64
	for _, h := range handles {
		if _, err := h.Wait(); err != nil {
			return loadResult{}, fmt.Errorf("job %d (%s): %w", h.ID(), h.Status().Name, err)
		}
		st := h.Status()
		execMS = append(execMS, st.ElapsedMS)
		sojournMS = append(sojournMS, float64(st.Finished.Sub(st.Submitted))/float64(time.Millisecond))
	}
	elapsed := time.Since(start)
	schedStats := srv.Close()

	return loadResult{
		Jobs:        n,
		FaultedJobs: faulted,
		ElapsedSec:  elapsed.Seconds(),
		JobsPerSec:  stats.Rate(n, elapsed),
		ExecMS:      toSummaryJSON(stats.Summarize(execMS)),
		SojournMS:   toSummaryJSON(stats.Summarize(sojournMS)),
		Sched:       schedStats,
	}, nil
}

func main() {
	jobs := flag.Int("jobs", 40, "service-load jobs")
	workers := flag.Int("workers", 4, "pool workers for the service load")
	minJobsPerSec := flag.Float64("min-jobs-per-sec", 100, "gate: min end-to-end service throughput")
	maxSpawnAllocs := flag.Int64("max-spawn-allocs", 0, "gate: max allocs/op on the spawn→execute cycle")
	out := flag.String("out", "BENCH_sched.json", "results file (empty: stdout only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the service load")
	flag.Parse()

	spawn := bestOf3(benchSpawnExecute)
	fmt.Printf("spawn→execute cycle: %.1f ns/op (%d allocs/op, n=%d)\n",
		spawn.NsPerOp, spawn.AllocsPerOp, spawn.N)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftsched:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ftsched:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	load, err := runServiceLoad(*jobs, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftsched:", err)
		os.Exit(2)
	}
	fmt.Printf("service load: %d jobs (%d faulted) in %.2fs — %.2f jobs/sec\n",
		load.Jobs, load.FaultedJobs, load.ElapsedSec, load.JobsPerSec)
	fmt.Printf("  sojourn ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		load.SojournMS.P50, load.SojournMS.P95, load.SojournMS.P99, load.SojournMS.Max)
	fmt.Printf("  exec    ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		load.ExecMS.P50, load.ExecMS.P95, load.ExecMS.P99, load.ExecMS.Max)
	fmt.Printf("  sched: %v\n", load.Sched)

	allocPass := spawn.AllocsPerOp <= *maxSpawnAllocs
	ratePass := load.JobsPerSec >= *minJobsPerSec
	report := struct {
		Timestamp      string      `json:"timestamp"`
		Workers        int         `json:"workers"`
		SpawnExecute   benchResult `json:"spawn_execute"`
		Load           loadResult  `json:"load"`
		MinJobsPerSec  float64     `json:"min_jobs_per_sec"`
		MaxSpawnAllocs int64       `json:"max_spawn_allocs"`
		Pass           bool        `json:"pass"`
	}{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		Workers:        *workers,
		SpawnExecute:   spawn,
		Load:           load,
		MinJobsPerSec:  *minJobsPerSec,
		MaxSpawnAllocs: *maxSpawnAllocs,
		Pass:           allocPass && ratePass,
	}

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ftsched:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ftsched:", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *out)
	}

	if !allocPass {
		fmt.Fprintf(os.Stderr, "FAIL: spawn→execute cycle allocates %d/op (budget %d)\n",
			spawn.AllocsPerOp, *maxSpawnAllocs)
	}
	if !ratePass {
		fmt.Fprintf(os.Stderr, "FAIL: service throughput %.2f jobs/sec below the %.2f floor\n",
			load.JobsPerSec, *minJobsPerSec)
	}
	if !report.Pass {
		os.Exit(1)
	}
	fmt.Printf("PASS: 0-alloc spawn cycle, throughput above %.0f jobs/sec\n", *minJobsPerSec)
}
