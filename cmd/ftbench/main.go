// Command ftbench reproduces the paper's experimental evaluation: it runs
// the benchmark suite under the sequential, baseline, and fault-tolerant
// executors across the fault scenarios of §VI and prints each table and
// figure's rows.
//
// Usage:
//
//	ftbench -experiment all                 # full suite, default sizes
//	ftbench -experiment fig5a -runs 10      # one figure, paper-style 10 runs
//	ftbench -sizes quick -experiment table2 # smoke-sized inputs
//	ftbench -cores 1,2,4,8 -experiment fig4
//
// Experiments: table1, fig4, fig5a, fig5b, table2, fig6, fig7, counts, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftdag/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: "+strings.Join(harness.Experiments, ", ")+", or all")
		sizes      = flag.String("sizes", "bench", "problem sizes: quick, bench, or paper")
		runs       = flag.Int("runs", 5, "repetitions per measurement (paper used 10)")
		cores      = flag.String("cores", "1,2,4,8", "comma-separated worker counts for the P sweeps")
		workers    = flag.Int("workers", 0, "worker count for single-P fault experiments (default: max of -cores)")
		seed       = flag.Int64("seed", 42, "fault-site selection seed")
		verify     = flag.Bool("verify", false, "verify results against reference implementations (slower)")
		csvDir     = flag.String("csv", "", "also write each experiment's rows as CSV files into this directory")
		replicaOut = flag.String("replicaout", "", "run the replication sweep and record the selective-vs-full baseline JSON at this path (overrides -experiment)")
	)
	flag.Parse()

	var sz harness.Sizes
	switch *sizes {
	case "quick":
		sz = harness.QuickSizes()
	case "bench":
		sz = harness.BenchSizes()
	case "paper":
		sz = harness.PaperSizes()
	default:
		fmt.Fprintf(os.Stderr, "ftbench: unknown -sizes %q (quick, bench, paper)\n", *sizes)
		os.Exit(2)
	}

	var cs []int
	for _, f := range strings.Split(*cores, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "ftbench: bad -cores entry %q\n", f)
			os.Exit(2)
		}
		cs = append(cs, n)
	}

	h := harness.New(harness.Options{
		Sizes:   sz,
		Runs:    *runs,
		Cores:   cs,
		Workers: *workers,
		Seed:    *seed,
		Verify:  *verify,
		Out:     os.Stdout,
		CSVDir:  *csvDir,
	})
	if *replicaOut != "" {
		if err := h.RunReplicationBaseline(*replicaOut); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := h.Run(*experiment); err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		os.Exit(1)
	}
}
