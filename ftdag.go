// Package ftdag is a fault-tolerant dynamic task graph scheduler, a Go
// implementation of "Fault-Tolerant Dynamic Task Graph Scheduling" (Kurt,
// Krishnamoorthy, K. Agrawal, G. Agrawal — SC 2014).
//
// A task graph is described by a Spec: integer task keys, ordered
// predecessor/successor functions, a sink task that transitively depends on
// everything, a data-block version produced by each task, and a compute
// function. The scheduler expands the graph dynamically from the sink and
// executes it with randomized work stealing (the NABBIT algorithm,
// Agrawal–Leiserson–Sukha 2010). The fault-tolerant executor augments the
// traversal so that detectable soft errors — corrupted task descriptors and
// corrupted or overwritten data-block versions — are recovered selectively
// and locally: only the threads that need a failed task participate in its
// recovery, each failed incarnation is recovered at most once, and the
// execution provably produces the same result as a fault-free run.
//
// # Quick start
//
//	g := ftdag.NewGraph(nil)                 // default demo kernel
//	g.AddTaskAuto(0).AddTaskAuto(1).AddTaskAuto(2)
//	g.AddEdge(0, 1).AddEdge(0, 2)
//	g.AddTaskAuto(3).AddEdge(1, 3).AddEdge(2, 3)
//	g.SetSink(3)
//	res, err := ftdag.Run(g, ftdag.Config{Workers: 4})
//
// To inject faults (for resilience testing), attach a Plan:
//
//	plan := ftdag.NewPlan().Add(1, ftdag.AfterCompute, 1)
//	res, err := ftdag.Run(g, ftdag.Config{Workers: 4, Plan: plan})
//
// The result is identical; the run's Metrics record the recovery work.
package ftdag

import (
	"ftdag/internal/block"
	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
	"ftdag/internal/journal"
	"ftdag/internal/service"
)

// Core model types. See the internal/graph package for full documentation.
type (
	// Key identifies a task (the paper's int64 task key).
	Key = graph.Key
	// Spec describes a dynamic task graph.
	Spec = graph.Spec
	// Context is the block-access interface handed to Compute.
	Context = graph.Context
	// BlockRef names one version of one data block.
	BlockRef = block.Ref
	// BlockID identifies a logical data block.
	BlockID = block.ID
	// Graph is an explicitly constructed Spec with builder methods.
	Graph = graph.Static
	// ComputeFunc is the kernel type used by Graph.
	ComputeFunc = graph.ComputeFunc
	// Props summarises a graph's static structure (T, E, S, degree).
	Props = graph.Props
)

// Execution types. See the internal/core package.
type (
	// Config configures an execution (workers, retention, plan, timeout).
	Config = core.Config
	// Result summarises one execution.
	Result = core.Result
	// Metrics are the executor counters of a run.
	Metrics = core.Metrics
	// Hooks are optional instrumentation callbacks.
	Hooks = core.Hooks
	// Status is a task's execution status.
	Status = core.Status
)

// Fault-injection types. See the internal/fault package.
type (
	// Plan maps task keys to planned fault injections.
	Plan = fault.Plan
	// Point is a fault-injection point in a task's lifetime.
	Point = fault.Point
	// TaskType classifies tasks by produced block version.
	TaskType = fault.TaskType
	// FaultError attributes a detected error to a task incarnation.
	FaultError = fault.Error
)

// Task lifetime injection points (paper §VI-B).
const (
	BeforeCompute = fault.BeforeCompute
	AfterCompute  = fault.AfterCompute
	AfterNotify   = fault.AfterNotify
)

// Task-type selectors for fault injection (paper §VI-B).
const (
	AnyTask = fault.AnyTask
	V0      = fault.V0
	VLast   = fault.VLast
	VRand   = fault.VRand
)

// Task statuses (paper §III).
const (
	Visited   = core.Visited
	Computed  = core.Computed
	Completed = core.Completed
)

// Multi-job execution service types. See the internal/service package.
// A Service owns one long-lived work-stealing pool and multiplexes many
// concurrent task-graph jobs onto it, with bounded admission, per-job
// deadlines/cancellation, fault plans, and retrievable metrics/traces.
type (
	// Service is a long-lived multi-job execution server.
	Service = service.Server
	// ServiceConfig sizes a Service (workers, queue bound, concurrency).
	ServiceConfig = service.Config
	// JobSpec describes one job submitted to a Service.
	JobSpec = service.JobSpec
	// JobHandle is the caller's reference to a submitted job.
	JobHandle = service.Handle
	// JobStatus is a point-in-time job snapshot.
	JobStatus = service.Status
	// JobState is a job's lifecycle state.
	JobState = service.State
	// ServiceSnapshot aggregates a Service's observability counters.
	ServiceSnapshot = service.Snapshot
)

// Durable-journal types. See the internal/journal package. A Journal is an
// append-only, segmented, checksummed write-ahead log plus snapshot store
// for the service's job lifecycle: attach one via ServiceConfig.Journal
// (with a ServiceConfig.Rebuild callback) and the service survives crashes
// — finished jobs come back queryable, unfinished jobs are re-enqueued, and
// a torn or corrupted journal tail is truncated with a warning at the next
// open instead of refusing to boot.
type (
	// Journal is a durable write-ahead log of job lifecycle records.
	Journal = journal.Journal
	// JournalOptions configures OpenJournal (directory, segment size,
	// snapshot retention, fsync policy).
	JournalOptions = journal.Options
	// JournalStats counts appends, fsyncs, rotations, and snapshots.
	JournalStats = journal.Stats
)

// Job lifecycle states.
const (
	JobQueued    = service.Queued
	JobRunning   = service.Running
	JobSucceeded = service.Succeeded
	JobFailed    = service.Failed
	JobCancelled = service.Cancelled
)

// Sentinel errors.
var (
	// ErrHung reports quiescence without sink completion.
	ErrHung = core.ErrHung
	// ErrTimeout reports that Config.Timeout expired.
	ErrTimeout = core.ErrTimeout
	// ErrCancelled reports that Config.Cancel fired mid-run.
	ErrCancelled = core.ErrCancelled
	// ErrQueueFull reports that a Service's admission queue is at capacity.
	ErrQueueFull = service.ErrQueueFull
	// ErrServiceClosed reports a Submit after Service.Close.
	ErrServiceClosed = service.ErrClosed
	// ErrDeadlineExceeded reports that a job's deadline expired.
	ErrDeadlineExceeded = service.ErrDeadlineExceeded
)

// NewService starts a multi-job execution service: one shared work-stealing
// pool serving every submitted job, with admission control and per-job
// isolation (cancellation and faults stay local to the job). With
// cfg.Journal set the service is durable: submissions are fsynced before
// they are acknowledged, and NewService replays the journal — restoring
// finished jobs and re-enqueueing unfinished ones via cfg.Rebuild.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenJournal opens (or creates) a durable job journal in opts.Dir,
// replaying any existing snapshot and write-ahead-log segments and
// recovering from a torn tail by truncating it. Pass the journal to
// NewService via ServiceConfig.Journal; the service owns and closes it.
func OpenJournal(opts JournalOptions) (*Journal, error) { return journal.Open(opts) }

// Run executes the task graph with the fault-tolerant work-stealing
// scheduler (Figures 2–3 of the paper) and returns the run's result.
func Run(spec Spec, cfg Config) (*Result, error) {
	return core.NewFT(spec, cfg).Run()
}

// RunBaseline executes the task graph with the original non-fault-tolerant
// NABBIT scheduler. cfg.Plan must be nil.
func RunBaseline(spec Spec, cfg Config) (*Result, error) {
	return core.NewBaseline(spec, cfg).Run()
}

// RunSequential executes the task graph on one thread in topological order
// (T1 measurement and ground-truth generation).
func RunSequential(spec Spec, retention int) (*Result, error) {
	return core.NewSequential(spec, retention).Run()
}

// NewGraph returns an empty explicit graph whose tasks run fn (nil for the
// default demo kernel: output = sum of predecessors' first elements + 1).
func NewGraph(fn ComputeFunc) *Graph { return graph.NewStatic(fn) }

// NewPlan returns an empty fault-injection plan.
func NewPlan() *Plan { return fault.NewPlan() }

// PlanCount plans faults at point on n tasks of the given type, selected
// deterministically from seed.
func PlanCount(spec Spec, typ TaskType, point Point, n int, seed int64) *Plan {
	return fault.PlanCount(spec, typ, point, n, seed)
}

// PlanFraction plans faults at point on the given fraction of all tasks.
func PlanFraction(spec Spec, typ TaskType, point Point, frac float64, seed int64) *Plan {
	return fault.PlanFraction(spec, typ, point, frac, seed)
}

// Validate structurally checks a Spec (predecessor/successor symmetry,
// acyclicity, unique outputs).
func Validate(spec Spec) error { return graph.Validate(spec) }

// Analyze returns the static properties of a Spec: T (tasks), E (edges),
// S (critical path), degrees.
func Analyze(spec Spec) Props { return graph.Analyze(spec) }
