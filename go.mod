module ftdag

go 1.22
