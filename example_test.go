package ftdag_test

import (
	"fmt"

	"ftdag"
)

// ExampleRun builds a four-task diamond and executes it with the
// fault-tolerant work-stealing scheduler.
func ExampleRun() {
	g := ftdag.NewGraph(nil) // default kernel: sum of predecessors + 1
	g.AddTaskAuto(0).AddTaskAuto(1).AddTaskAuto(2).AddTaskAuto(3)
	g.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3)
	g.SetSink(3)

	res, err := ftdag.Run(g, ftdag.Config{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Sink[0])
	// Output: 5
}

// ExampleRun_faultInjection shows that an injected soft error changes the
// metrics but never the result.
func ExampleRun_faultInjection() {
	g := ftdag.NewGraph(nil)
	g.AddTaskAuto(0).AddTaskAuto(1)
	g.AddEdge(0, 1)
	g.SetSink(1)

	plan := ftdag.NewPlan().Add(0, ftdag.AfterCompute, 1)
	res, err := ftdag.Run(g, ftdag.Config{Workers: 2, Plan: plan})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Sink[0], res.Metrics.Recoveries, res.ReexecutedTasks)
	// Output: 2 1 1
}

// ExampleAnalyze reports the quantities of the paper's Table I for a graph.
func ExampleAnalyze() {
	g := ftdag.NewGraph(nil)
	for i := ftdag.Key(0); i < 5; i++ {
		g.AddTaskAuto(i)
		if i > 0 {
			g.AddEdge(i-1, i)
		}
	}
	g.SetSink(4)
	p := ftdag.Analyze(g)
	fmt.Printf("T=%d E=%d S=%d\n", p.Tasks, p.Edges, p.CriticalPath)
	// Output: T=5 E=4 S=5
}

// ExampleValidate catches structurally broken specs before execution.
func ExampleValidate() {
	g := ftdag.NewGraph(nil)
	g.AddTaskAuto(0).AddTaskAuto(1)
	g.AddEdge(0, 1).AddEdge(0, 1) // duplicate dependence
	g.SetSink(1)
	fmt.Println(ftdag.Validate(g) != nil)
	// Output: true
}

// ExampleRunSequential obtains the single-threaded ground truth (T1).
func ExampleRunSequential() {
	g := ftdag.NewGraph(nil)
	g.AddTaskAuto(0).AddTaskAuto(1).AddEdge(0, 1).SetSink(1)
	res, err := ftdag.RunSequential(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Sink[0], res.Tasks)
	// Output: 2 2
}
