// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - scheduler discipline: per-worker work-stealing deques (the NABBIT
//     assumption) vs a single central FIFO queue;
//   - block-version retention: single-assignment (unbounded) vs reuse (1)
//     vs two versions (2), measuring both fault-free cost and the recovery
//     cascade length the paper's §VI discusses for Floyd-Warshall;
//   - FT bookkeeping: the fault-tolerant executor vs the plain NABBIT
//     baseline, isolating the cost of bit vectors, life numbers, and the
//     recovery table (the paper's Figure 4 claim: within noise).
package ftdag_test

import (
	"fmt"
	"testing"

	"ftdag/internal/apps"
	"ftdag/internal/apps/fw"
	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
	"ftdag/internal/sched"
)

// BenchmarkAblationScheduler compares work stealing against the
// central-queue discipline on the fault-free FT executor.
func BenchmarkAblationScheduler(b *testing.B) {
	policies := map[string]sched.Policy{
		"worksteal": sched.WorkStealing,
		"central":   sched.CentralQueue,
	}
	for _, name := range []string{"LU", "LCS"} {
		a := benchApp(b, name)
		for pn, pol := range policies {
			for _, p := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/P%d", name, pn, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := core.NewFT(a.Spec(), core.Config{
							Workers:     p,
							Retention:   a.Retention(),
							SchedPolicy: pol,
						}).Run()
						if err != nil {
							b.Fatal(err)
						}
						_ = res
					}
				})
			}
		}
	}
}

// BenchmarkAblationRetention sweeps the block-version retention on FW: the
// paper chose two versions per block specifically to bound the recovery
// cascade; retention 0 (single assignment) removes cascades entirely at the
// cost of memory, and the reexec/op metric shows the cascade length each
// policy pays under after-compute faults.
func BenchmarkAblationRetention(b *testing.B) {
	a, err := fw.New(apps.Config{N: 128, B: 16, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	count := scaled(a, 512)
	for _, retention := range []int{0, 2, 3} {
		b.Run(fmt.Sprintf("faulty/K%d", retention), func(b *testing.B) {
			var reexec int64
			var bytes int64
			for i := 0; i < b.N; i++ {
				plan := fault.PlanCount(a.Spec(), fault.VRand, fault.AfterCompute, count, int64(i))
				res, err := core.NewFT(a.Spec(), core.Config{
					Workers:   2,
					Retention: retention,
					Plan:      plan,
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				reexec += res.ReexecutedTasks
				bytes += res.Store.BytesRetained
			}
			b.ReportMetric(float64(reexec)/float64(b.N), "reexec/op")
			b.ReportMetric(float64(bytes)/float64(b.N)/1e6, "retainedMB")
		})
		b.Run(fmt.Sprintf("clean/K%d", retention), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := core.NewFT(a.Spec(), core.Config{
					Workers:   2,
					Retention: retention,
				}).Run()
				if err != nil {
					b.Fatal(err)
				}
				bytes += res.Store.BytesRetained
			}
			b.ReportMetric(float64(bytes)/float64(b.N)/1e6, "retainedMB")
		})
	}
}

// BenchmarkAblationFTBookkeeping isolates the fault-tolerance bookkeeping
// cost (bit vectors, life tracking, recovery table) by comparing the FT
// executor against the plain NABBIT baseline on identical graphs — the
// paper's Figure 4 comparison, as a microbenchmark.
func BenchmarkAblationFTBookkeeping(b *testing.B) {
	for _, name := range benchOrder {
		a := benchApp(b, name)
		b.Run(name+"/baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewBaseline(a.Spec(), core.Config{
					Workers: 2, Retention: a.Retention(),
				}).Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/ft", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFT(b, a, 2, nil)
			}
		})
	}
}

// BenchmarkAblationTraversalOverhead measures the pure scheduling cost per
// task by running graphs whose computes are trivial: the difference between
// executors is all bookkeeping.
func BenchmarkAblationTraversalOverhead(b *testing.B) {
	g := graph.Layered(50, 40, 4, 7, func(key graph.Key, vals [][]float64) []float64 {
		return []float64{1}
	})
	props := graph.Analyze(g)
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewBaseline(g, core.Config{Workers: 2}).Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(props.Tasks), "tasks")
	})
	b.Run("ft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewFT(g, core.Config{Workers: 2}).Run(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(props.Tasks), "tasks")
	})
}
