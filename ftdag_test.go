package ftdag_test

import (
	"errors"
	"testing"
	"time"

	"ftdag"
)

func diamond() *ftdag.Graph {
	g := ftdag.NewGraph(nil)
	g.AddTaskAuto(0).AddTaskAuto(1).AddTaskAuto(2).AddTaskAuto(3)
	g.AddEdge(0, 1).AddEdge(0, 2).AddEdge(1, 3).AddEdge(2, 3)
	return g.SetSink(3)
}

func TestPublicRun(t *testing.T) {
	g := diamond()
	if err := ftdag.Validate(g); err != nil {
		t.Fatal(err)
	}
	p := ftdag.Analyze(g)
	if p.Tasks != 4 || p.Edges != 4 || p.CriticalPath != 3 {
		t.Fatalf("Analyze = %+v", p)
	}
	res, err := ftdag.Run(g, ftdag.Config{Workers: 2, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Demo kernel: 0 → 1; 1,2 → 2 each; 3 → 2+2+1 = 5.
	if len(res.Sink) != 1 || res.Sink[0] != 5 {
		t.Fatalf("sink = %v, want [5]", res.Sink)
	}
}

func TestPublicRunWithFaults(t *testing.T) {
	g := diamond()
	clean, err := ftdag.Run(g, ftdag.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, point := range []ftdag.Point{ftdag.BeforeCompute, ftdag.AfterCompute, ftdag.AfterNotify} {
		plan := ftdag.NewPlan()
		for k := ftdag.Key(0); k < 3; k++ {
			plan.Add(k, point, 1)
		}
		res, err := ftdag.Run(g, ftdag.Config{Workers: 4, Plan: plan, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("%v: %v", point, err)
		}
		if res.Sink[0] != clean.Sink[0] {
			t.Fatalf("%v: sink %v != clean %v", point, res.Sink, clean.Sink)
		}
	}
}

func TestPublicBaselineAndSequential(t *testing.T) {
	g := diamond()
	b, err := ftdag.RunBaseline(g, ftdag.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ftdag.RunSequential(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Sink[0] != s.Sink[0] {
		t.Fatalf("baseline %v != sequential %v", b.Sink, s.Sink)
	}
}

func TestPublicPlanBuilders(t *testing.T) {
	g := diamond()
	if p := ftdag.PlanCount(g, ftdag.VRand, ftdag.AfterCompute, 2, 1); p.Len() != 2 {
		t.Fatalf("PlanCount built %d", p.Len())
	}
	// 4 tasks → 50% rounds to 2.
	if p := ftdag.PlanFraction(g, ftdag.AnyTask, ftdag.BeforeCompute, 0.5, 1); p.Len() != 2 {
		t.Fatalf("PlanFraction built %d", p.Len())
	}
}

func TestPublicCustomSpec(t *testing.T) {
	// A minimal hand-written Spec: two tasks sharing one block across two
	// versions.
	spec := &twoVersions{}
	if err := ftdag.Validate(spec); err != nil {
		t.Fatal(err)
	}
	res, err := ftdag.Run(spec, ftdag.Config{Workers: 1, Retention: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sink[0] != 11 {
		t.Fatalf("sink = %v, want [11]", res.Sink)
	}
}

func TestPublicTimeout(t *testing.T) {
	g := ftdag.NewGraph(func(k ftdag.Key, vals [][]float64) []float64 {
		time.Sleep(300 * time.Millisecond)
		return []float64{1}
	})
	g.AddTaskAuto(0)
	g.SetSink(0)
	_, err := ftdag.Run(g, ftdag.Config{Timeout: 20 * time.Millisecond})
	if !errors.Is(err, ftdag.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// twoVersions: task 0 writes (block 7, v0); task 1 reads it and writes
// (block 7, v1). Sink output = input + 1.
type twoVersions struct{}

func (*twoVersions) Sink() ftdag.Key { return 1 }

func (*twoVersions) Predecessors(k ftdag.Key) []ftdag.Key {
	if k == 1 {
		return []ftdag.Key{0}
	}
	return nil
}

func (*twoVersions) Successors(k ftdag.Key) []ftdag.Key {
	if k == 0 {
		return []ftdag.Key{1}
	}
	return nil
}

func (*twoVersions) Output(k ftdag.Key) ftdag.BlockRef {
	return ftdag.BlockRef{Block: 7, Version: int(k)}
}

func (*twoVersions) Compute(ctx ftdag.Context, k ftdag.Key) error {
	if k == 0 {
		ctx.Write([]float64{10})
		return nil
	}
	in, err := ctx.ReadPred(0)
	if err != nil {
		return err
	}
	ctx.Write([]float64{in[0] + 1})
	return nil
}

// TestPublicService exercises the multi-job service facade: several jobs
// (some with fault plans) share one pool, all results match the fault-free
// diamond, and the admission/lifecycle API behaves as documented.
func TestPublicService(t *testing.T) {
	s := ftdag.NewService(ftdag.ServiceConfig{Workers: 2, MaxConcurrentJobs: 2, MaxQueuedJobs: 8})
	var handles []*ftdag.JobHandle
	for i := 0; i < 4; i++ {
		g := diamond()
		spec := ftdag.JobSpec{Name: "diamond", Spec: g}
		if i%2 == 1 {
			spec.Plan = ftdag.NewPlan().Add(1, ftdag.AfterCompute, 1)
		}
		h, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if len(res.Sink) != 1 || res.Sink[0] != 5 {
			t.Fatalf("job %d sink = %v, want [5]", i, res.Sink)
		}
		if i%2 == 1 && res.Metrics.Recoveries == 0 {
			t.Errorf("faulted job %d recorded no recoveries", i)
		}
		if st := h.Status(); st.State != ftdag.JobSucceeded {
			t.Errorf("job %d state = %v", i, st.State)
		}
	}
	if snap := s.Snapshot(); snap.Succeeded != 4 {
		t.Errorf("snapshot succeeded = %d, want 4", snap.Succeeded)
	}
	s.Close()
	if _, err := s.Submit(ftdag.JobSpec{Spec: diamond()}); !errors.Is(err, ftdag.ErrServiceClosed) {
		t.Errorf("submit after close = %v, want ErrServiceClosed", err)
	}
}
