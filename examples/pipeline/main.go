// Pipeline: a fan-out / fan-in analytics pipeline under a fault storm.
//
// The graph models a staged computation — ingest shards, per-shard
// transforms, pairwise merges, and a final aggregate — and then subjects it
// to increasingly hostile fault scenarios: every task failing once, tasks
// failing repeatedly while being recovered (the paper's Guarantee 6), and
// faults at all three lifetime points at once. The aggregate must come out
// identical every time.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"ftdag"
)

const (
	shards = 16
	// key layout: ingest i → i, transform i → shards+i,
	// merge level entries follow, aggregate is last.
)

func buildPipeline() *ftdag.Graph {
	g := ftdag.NewGraph(func(key ftdag.Key, vals [][]float64) []float64 {
		// Every stage folds its inputs deterministically; ingest
		// tasks synthesise shard data from their key.
		acc := float64(key%97) + 1
		for _, v := range vals {
			for _, x := range v {
				acc += x * 1.000001
			}
		}
		return []float64{acc}
	})
	next := ftdag.Key(0)
	ingest := make([]ftdag.Key, shards)
	for i := range ingest {
		ingest[i] = next
		g.AddTaskAuto(next)
		next++
	}
	transform := make([]ftdag.Key, shards)
	for i := range transform {
		transform[i] = next
		g.AddTaskAuto(next)
		g.AddEdge(ingest[i], next)
		next++
	}
	// Pairwise merge tree.
	level := transform
	for len(level) > 1 {
		var up []ftdag.Key
		for i := 0; i < len(level); i += 2 {
			g.AddTaskAuto(next)
			g.AddEdge(level[i], next)
			if i+1 < len(level) {
				g.AddEdge(level[i+1], next)
			}
			up = append(up, next)
			next++
		}
		level = up
	}
	g.SetSink(level[0])
	return g
}

func main() {
	g := buildPipeline()
	if err := ftdag.Validate(g); err != nil {
		log.Fatal(err)
	}
	props := ftdag.Analyze(g)
	fmt.Println("pipeline:", props)

	base, err := ftdag.Run(g, ftdag.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s aggregate=%.6f computes=%d\n", "fault-free:", base.Sink[0], base.Metrics.Computes)

	check := func(label string, plan *ftdag.Plan) {
		res, err := ftdag.Run(g, ftdag.Config{Workers: 4, Plan: plan})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		if res.Sink[0] != base.Sink[0] {
			log.Fatalf("%s: aggregate %v != %v", label, res.Sink[0], base.Sink[0])
		}
		fmt.Printf("%-28s aggregate=%.6f computes=%d recoveries=%d injected=%d\n",
			label, res.Sink[0], res.Metrics.Computes, res.Metrics.Recoveries,
			res.Metrics.InjectionsFired)
	}

	// Scenario 1: every non-sink task fails once after computing.
	storm := ftdag.NewPlan()
	for _, k := range allKeys(props.Tasks) {
		if k != g.Sink() {
			storm.Add(k, ftdag.AfterCompute, 1)
		}
	}
	check("storm (all fail once):", storm)

	// Scenario 2: the merge tree's tasks fail three incarnations in a row
	// — failures during recovery are recursively recovered.
	stubborn := ftdag.NewPlan()
	for k := ftdag.Key(2 * shards); k < ftdag.Key(props.Tasks-1); k++ {
		stubborn.Add(k, ftdag.AfterCompute, 3)
	}
	check("stubborn (merges fail x3):", stubborn)

	// Scenario 3: mixed lifetime points across the whole pipeline.
	mixed := ftdag.NewPlan()
	points := []ftdag.Point{ftdag.BeforeCompute, ftdag.AfterCompute, ftdag.AfterNotify}
	for i, k := range allKeys(props.Tasks) {
		if k != g.Sink() {
			mixed.Add(k, points[i%3], 1+i%2)
		}
	}
	check("mixed lifetime points:", mixed)

	fmt.Println("all scenarios produced the fault-free aggregate")
}

func allKeys(n int) []ftdag.Key {
	ks := make([]ftdag.Key, n)
	for i := range ks {
		ks[i] = ftdag.Key(i)
	}
	return ks
}
