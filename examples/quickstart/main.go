// Quickstart: build a small task graph, run it with the fault-tolerant
// work-stealing scheduler, then run it again with an injected soft error and
// observe that the result is identical while the metrics show the recovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftdag"
)

func main() {
	// A diamond with a custom kernel: each task sums its predecessors'
	// outputs and appends its own key.
	//
	//	      0
	//	    /   \
	//	   1     2
	//	    \   /
	//	      3   (sink)
	g := ftdag.NewGraph(func(key ftdag.Key, vals [][]float64) []float64 {
		sum := float64(key)
		for _, v := range vals {
			for _, x := range v {
				sum += x
			}
		}
		return []float64{sum}
	})
	g.AddTaskAuto(0).AddTaskAuto(1).AddTaskAuto(2).AddTaskAuto(3)
	g.AddEdge(0, 1).AddEdge(0, 2)
	g.AddEdge(1, 3).AddEdge(2, 3)
	g.SetSink(3)

	if err := ftdag.Validate(g); err != nil {
		log.Fatalf("graph is malformed: %v", err)
	}
	fmt.Println("graph:", ftdag.Analyze(g))

	// Fault-free run.
	res, err := ftdag.Run(g, ftdag.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free:  sink=%v  computes=%d  recoveries=%d\n",
		res.Sink, res.Metrics.Computes, res.Metrics.Recoveries)

	// Same graph, but task 1 suffers a detectable soft error right after
	// its compute finishes (its descriptor and output block are
	// corrupted). The scheduler recovers it selectively — no global
	// rollback — and the sink value must not change.
	plan := ftdag.NewPlan().Add(1, ftdag.AfterCompute, 1)
	res2, err := ftdag.Run(g, ftdag.Config{Workers: 4, Plan: plan})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with fault:  sink=%v  computes=%d  recoveries=%d\n",
		res2.Sink, res2.Metrics.Computes, res2.Metrics.Recoveries)

	if res.Sink[0] != res2.Sink[0] {
		log.Fatalf("results differ: %v vs %v", res.Sink, res2.Sink)
	}
	fmt.Println("results identical — recovery was transparent")
}
