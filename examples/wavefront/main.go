// Wavefront: a dynamic programming stencil expressed as a *dynamic* task
// graph — the Spec interface is implemented directly, so tasks, dependences,
// and block mappings are computed on demand rather than materialised. The
// example reuses a rolling window of data-block buffers (the paper's
// memory-reuse configuration) and demonstrates the cascading re-execution
// that recovery performs when a fault is discovered after the faulty task's
// buffer slot has already been recycled.
//
// The kernel is an edit-distance-style recurrence over an R×C tile grid:
// tile (i,j) depends on (i-1,j), (i,j-1), (i-1,j-1). Tiles write into a pool
// of two buffer rows, so tile (i,j) overwrites the buffer of tile (i-2,j);
// anti-dependence edges make that reuse safe (all readers of a buffer
// version precede the next writer).
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"ftdag"
)

// wavefront implements ftdag.Spec directly.
type wavefront struct {
	rows, cols int
	tile       int // cells per tile edge
	a, b       []byte
}

func (wf *wavefront) key(i, j int) ftdag.Key        { return ftdag.Key(i*wf.cols + j) }
func (wf *wavefront) coords(k ftdag.Key) (int, int) { return int(k) / wf.cols, int(k) % wf.cols }

func (wf *wavefront) Sink() ftdag.Key { return wf.key(wf.rows-1, wf.cols-1) }

func (wf *wavefront) Predecessors(k ftdag.Key) []ftdag.Key {
	i, j := wf.coords(k)
	var ps []ftdag.Key
	if i > 0 {
		ps = append(ps, wf.key(i-1, j))
	}
	if j > 0 {
		ps = append(ps, wf.key(i, j-1))
	}
	if i > 0 && j > 0 {
		ps = append(ps, wf.key(i-1, j-1))
	}
	// Anti-dependences: tile (i,j) reuses tile (i-2,j)'s buffer, so the
	// readers of that buffer to the right must already be done.
	if i >= 2 && j+1 < wf.cols {
		ps = append(ps, wf.key(i-2, j+1), wf.key(i-1, j+1))
	}
	return ps
}

func (wf *wavefront) Successors(k ftdag.Key) []ftdag.Key {
	i, j := wf.coords(k)
	var ss []ftdag.Key
	if i+1 < wf.rows {
		ss = append(ss, wf.key(i+1, j))
	}
	if j+1 < wf.cols {
		ss = append(ss, wf.key(i, j+1))
	}
	if i+1 < wf.rows && j+1 < wf.cols {
		ss = append(ss, wf.key(i+1, j+1))
	}
	if j > 0 {
		if i+2 < wf.rows {
			ss = append(ss, wf.key(i+2, j-1))
		}
		if i+1 < wf.rows && i >= 1 {
			ss = append(ss, wf.key(i+1, j-1))
		}
	}
	return ss
}

// Output maps tile (i,j) to buffer (i mod 2, j), version i/2 — two live
// buffer rows for the whole computation.
func (wf *wavefront) Output(k ftdag.Key) ftdag.BlockRef {
	i, j := wf.coords(k)
	return ftdag.BlockRef{
		Block:   ftdag.BlockID((i%2)*wf.cols + j),
		Version: i / 2,
	}
}

// Compute runs the edit-distance recurrence on the tile. The output layout
// is tile*tile cells; the sink tile's last cell is the distance.
func (wf *wavefront) Compute(ctx ftdag.Context, k ftdag.Key) error {
	i, j := wf.coords(k)
	t := wf.tile
	top := make([]float64, t)
	left := make([]float64, t)
	corner := 0.0
	if i > 0 {
		v, err := ctx.ReadPred(wf.key(i-1, j))
		if err != nil {
			return err
		}
		copy(top, v[(t-1)*t:])
	} else {
		for c := 0; c < t; c++ {
			top[c] = float64(j*t + c) // first row: distance from empty prefix
		}
	}
	if j > 0 {
		v, err := ctx.ReadPred(wf.key(i, j-1))
		if err != nil {
			return err
		}
		for r := 0; r < t; r++ {
			left[r] = v[r*t+t-1]
		}
	} else {
		for r := 0; r < t; r++ {
			left[r] = float64(i*t + r)
		}
	}
	switch {
	case i > 0 && j > 0:
		v, err := ctx.ReadPred(wf.key(i-1, j-1))
		if err != nil {
			return err
		}
		corner = v[t*t-1]
	case i > 0:
		corner = float64(i * t)
	case j > 0:
		corner = float64(j * t)
	}
	out := make([]float64, t*t)
	for r := 0; r < t; r++ {
		gi := i*t + r
		for c := 0; c < t; c++ {
			gj := j*t + c
			var up, lf, dg float64
			if r == 0 {
				up = top[c]
			} else {
				up = out[(r-1)*t+c]
			}
			if c == 0 {
				lf = left[r]
			} else {
				lf = out[r*t+c-1]
			}
			switch {
			case r == 0 && c == 0:
				dg = corner
			case r == 0:
				dg = top[c-1]
			case c == 0:
				dg = left[r-1]
			default:
				dg = out[(r-1)*t+c-1]
			}
			cost := 1.0
			if wf.a[gi] == wf.b[gj] {
				cost = 0
			}
			best := dg + cost
			if up+1 < best {
				best = up + 1
			}
			if lf+1 < best {
				best = lf + 1
			}
			out[r*t+c] = best
		}
	}
	ctx.Write(out)
	return nil
}

// reference is the plain O(N²) edit distance.
func (wf *wavefront) reference() int {
	n := len(wf.a)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if wf.a[i-1] == wf.b[j-1] {
				cost = 0
			}
			best := prev[j-1] + cost
			if prev[j]+1 < best {
				best = prev[j] + 1
			}
			if cur[j-1]+1 < best {
				best = cur[j-1] + 1
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

func randomDNA(n int, seed uint64) []byte {
	s := make([]byte, n)
	for i := range s {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		s[i] = "ACGT"[(seed*0x2545F4914F6CDD1D)%4]
	}
	return s
}

func main() {
	const tiles, tile = 12, 16
	n := tiles * tile
	wf := &wavefront{rows: tiles, cols: tiles, tile: tile,
		a: randomDNA(n, 1), b: randomDNA(n, 2)}

	if err := ftdag.Validate(wf); err != nil {
		log.Fatalf("spec invalid: %v", err)
	}
	fmt.Println("graph:", ftdag.Analyze(wf))
	want := wf.reference()

	// Fault-free, with the two-buffer reuse (retention 1: one version per
	// buffer slot lives at a time).
	res, err := ftdag.Run(wf, ftdag.Config{Workers: 4, Retention: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("fault-free", res, tile, want)

	// Now corrupt a mid-grid tile *after it has notified its successors*.
	// By the time a consumer touches the corrupted output, the buffer
	// window has often moved past the failed tile, so recovery must
	// re-execute the chain of tasks that rebuild the needed versions.
	victim := wf.key(tiles/2, tiles/2)
	plan := ftdag.NewPlan().Add(victim, ftdag.AfterNotify, 1)
	res, err = ftdag.Run(wf, ftdag.Config{Workers: 4, Retention: 1, Plan: plan})
	if err != nil {
		log.Fatal(err)
	}
	report("after-notify fault", res, tile, want)
	fmt.Printf("recovery cascade: %d recoveries, %d resets, %d tasks re-executed\n",
		res.Metrics.Recoveries, res.Metrics.Resets, res.ReexecutedTasks)
}

func report(label string, res *ftdag.Result, tile, want int) {
	got := int(res.Sink[tile*tile-1])
	status := "OK"
	if got != want {
		status = fmt.Sprintf("WRONG (want %d)", want)
	}
	fmt.Printf("%-20s edit distance=%d [%s]  elapsed=%v  computes=%d\n",
		label, got, status, res.Elapsed, res.Metrics.Computes)
	if got != want {
		log.Fatal("result mismatch")
	}
}
