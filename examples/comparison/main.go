// Comparison: the same task graph and the same soft errors handled three
// ways — selective localized recovery (this library's fault-tolerant
// scheduler), collective checkpoint/restart, and dual-modular redundancy.
//
// The example quantifies the paper's positioning arguments on a live run:
// checkpointing pays synchronization and copying even without faults and
// rolls back healthy work when one task fails; replication pays the whole
// computation twice, always; selective recovery pays almost nothing without
// faults and re-executes only what was lost.
//
// Note: the checkpoint and replication executors live in the library's
// internals as comparators for the benchmark harness; this example drives
// them through `go run`, so it imports them directly.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"ftdag"
	"ftdag/internal/core"
	"ftdag/internal/fault"
	"ftdag/internal/graph"
)

func main() {
	// A layered workload: 12 layers × 24 tasks, each task folding its
	// predecessors with a little arithmetic to give the kernels weight.
	g := graph.Layered(12, 24, 4, 2024, func(key graph.Key, vals [][]float64) []float64 {
		acc := float64(key)
		for i := 0; i < 20000; i++ {
			acc += float64(i%7) * 1e-9
		}
		for _, v := range vals {
			acc += v[0] * 1e-6
		}
		return []float64{acc}
	})
	props := ftdag.Analyze(g)
	fmt.Println("workload:", props)

	const faults = 8
	mkPlan := func() *fault.Plan {
		p := fault.NewPlan()
		for _, k := range fault.SelectTasks(g, fault.AnyTask, faults, 99) {
			p.Add(k, fault.AfterCompute, 1)
		}
		return p
	}

	fmt.Printf("%-22s %12s %12s %10s\n", "scheme", "clean", "with faults", "reexec")

	// Selective recovery (the paper's contribution).
	clean, err := ftdag.Run(g, ftdag.Config{Workers: 4})
	check(err)
	faulty, err := ftdag.Run(g, ftdag.Config{Workers: 4, Plan: mkPlan()})
	check(err)
	mustEqual(clean.Sink, faulty.Sink)
	fmt.Printf("%-22s %12v %12v %10d\n", "ft-selective", clean.Elapsed.Round(10e3), faulty.Elapsed.Round(10e3), faulty.ReexecutedTasks)

	// Collective checkpoint/restart.
	ckClean, ckCleanStats, err := core.NewCheckpoint(g, core.Config{Workers: 4}, 3).Run()
	check(err)
	ckFaulty, ckStats, err := core.NewCheckpoint(g, core.Config{Workers: 4, Plan: mkPlan()}, 3).Run()
	check(err)
	mustEqual(clean.Sink, ckFaulty.Sink)
	fmt.Printf("%-22s %12v %12v %10d   (%d checkpoints, %d rollbacks)\n",
		"checkpoint/restart", ckClean.Elapsed.Round(10e3), ckFaulty.Elapsed.Round(10e3),
		ckFaulty.ReexecutedTasks, ckCleanStats.Checkpoints, ckStats.Rollbacks)

	// Dual-modular redundancy.
	rClean, _, err := core.NewReplicated(g, core.Config{Workers: 4}).Run()
	check(err)
	rFaulty, rStats, err := core.NewReplicated(g, core.Config{Workers: 4, Plan: mkPlan()}).Run()
	check(err)
	mustEqual(clean.Sink, rFaulty.Sink)
	fmt.Printf("%-22s %12v %12v %10d   (%d replica mismatches, 2x base work)\n",
		"replication (DMR)", rClean.Elapsed.Round(10e3), rFaulty.Elapsed.Round(10e3),
		rFaulty.ReexecutedTasks, rStats.Mismatches)

	fmt.Println("\nall three schemes produced identical results; selective recovery")
	fmt.Printf("re-executed %d tasks for %d faults, checkpointing re-executed %d,\n",
		faulty.ReexecutedTasks, faults, ckFaulty.ReexecutedTasks)
	fmt.Println("and replication executed every task twice before any fault happened.")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustEqual(a, b []float64) {
	if len(a) != len(b) || a[0] != b[0] {
		log.Fatalf("results differ: %v vs %v", a, b)
	}
}
